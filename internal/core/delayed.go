package core

import (
	"sync/atomic"

	"sasgd/internal/comm"
	"sasgd/internal/data"
	"sasgd/internal/nn"
	"sasgd/internal/obs"
	"sasgd/internal/tensor"
)

// The scheduled SASGD path: Algorithm 1 with the three composable
// communication policies of Config.TSched / HierGroups / DelayedApply
// layered onto the loop. The legacy trainSASGD stays byte-identical for
// runs that use none of them; TSchedStatic routes the same fixed-T
// schedule through this path and is pinned bitwise-equal to the legacy
// loop (schedule_test.go).
//
// Policy composition at a communication boundary:
//
//   - Flat + eager: allreduce gs, apply γp to the global reference,
//     reset — exactly the legacy aggregate(), with the T-scheduler's
//     drift measurement spliced between apply and reset.
//   - Hierarchical: every boundary runs the cheap intra-island
//     allreduce; the island's working reference w moves at the
//     island-local model-averaging rate γp·p/q and the island aggregate
//     accumulates into acc. Every TOuter boundaries the islands
//     exchange acc (leaders tree-allreduce + island fan-out, or a codec
//     collective over the full group with non-leaders contributing
//     zeros), the global reference absorbs it at γp, and w rebases onto
//     it — so each gradient's total weight in the global model is
//     exactly γp regardless of island sizes.
//   - Delayed (DaSGD): the boundary's exchange is launched through the
//     bucketed comm worker and its result applied at the NEXT boundary,
//     hiding the entire transfer behind a full round of compute instead
//     of one backward pass. Under a hierarchical schedule only the
//     outer exchange is delayed. Simulated arrival times are captured
//     in a comm.DeferSync and folded in at the apply boundary, keeping
//     simulated clocks deterministic (the worker's syncs would
//     otherwise race the learner's compute advances).
//
// One-round-shift invariant (pinned in delayed_test.go): the k-th
// aggregate a delayed run computes is bitwise the aggregate an eager
// run computes at its k-th boundary *given the same trajectory*; since
// delay alters the trajectory from the second boundary on, the pinned
// equalities are the first aggregate, the single-boundary run (bitwise
// equal to eager end to end), and hook-origin indices arriving in
// order, each applied exactly one boundary late.
func trainSASGDScheduled(cfg Config, prob *Problem) *Result {
	p := cfg.Learners
	shards := prob.Train.Partition(p)
	bpe := batchesPerEpoch(shards, cfg.Batch)

	group := newTrainGroup(cfg, p)
	group.SetTracer(cfg.Tracer)
	cfg.Tracer.SetStats(func() interface{} { return group.Stats() })
	if cfg.Sim != nil && cfg.HierGroups < 2 {
		// Flat runs get cross-island accounting from the simulated
		// topology, so frontier tables can compare the uplink traffic a
		// hierarchical schedule would have avoided. (The hierarchical
		// path installs its own partition map via comm.NewHier.)
		islandOf := make([]int, p)
		for r := range islandOf {
			islandOf[r] = cfg.Sim.IslandOf(r)
		}
		group.SetIslands(islandOf)
	}
	rec := newRecorder(prob)
	fleet := newFleet(cfg, p)
	var samples atomic.Int64
	var finalParams []float64
	var finalRatio float64
	var finalT int

	runLearnersOn(cfg.localRanks(p), func(rank int) {
		net := prob.newReplica(cfg.Seed + int64(rank))
		m := net.NumParams()
		params := net.ParamData()
		grads := net.GradData()
		tk := cfg.Tracer.Learner(rank)
		net.SetTrack(tk)

		// x ← broadcast(x, p, id); x′ ← x
		bs := tk.Begin()
		group.BroadcastTree(rank, params)
		tk.End(obs.PhaseBcast, bs)
		xref := append([]float64(nil), params...)
		gs := make([]float64, m)

		eng := newSchedEngine(cfg, group, rank, p, net, gs, xref, tk)
		eng.fc = newFleetCollector(cfg, rank, p, fleet)
		eng.fc.attach(net)

		sampler := data.NewEpochSampler(shards[rank].Len(), cfg.Batch, cfg.Seed+int64(rank)*31+7)
		var lastLoss float64
		step := 0
		next := eng.sched.T()
		for epoch := 0; epoch < cfg.Epochs; epoch++ {
			for b := 0; b < bpe; b++ {
				idx := sampler.Next()
				x, y := shards[rank].Batch(idx)
				lastLoss = net.Step(x, y)
				// x ← x − γ·g ; gs ← gs + g (eng.gs is the current
				// accumulator — the delayed path swaps it with the
				// in-flight buffer at each boundary).
				ls := tk.Begin()
				tensor.Axpy(-cfg.Gamma, grads, params)
				tensor.Axpy(1, grads, eng.gs)
				tk.End(obs.PhaseLocalStep, ls)
				samples.Add(int64(len(idx)))
				if cfg.Sim != nil {
					cfg.Sim.ChargeBatch(rank, cfg.FlopsPerSample*float64(len(idx)))
				}
				step++
				if step == next {
					eng.onBoundary(params)
					next = step + eng.sched.T()
				}
			}
			if epoch == cfg.Epochs-1 {
				// Apply any still-pending delayed aggregate before the
				// final epoch's evaluation: waiting on local handles
				// involves no group collective, so per-rank timing is
				// free to differ here.
				eng.flush(params)
			} else {
				eng.drain()
			}
			group.Barrier(rank)
			if rank == 0 && (epoch+1)%cfg.EvalEvery == 0 {
				simNow := 0.0
				if cfg.Sim != nil {
					simNow = cfg.Sim.MaxTime()
				}
				rec.record(epoch+1, params, lastLoss, simNow)
			}
			group.Barrier(rank)
		}
		eng.close()
		if rank == 0 {
			finalParams = append([]float64(nil), params...)
			finalT = eng.sched.T()
			if eng.comp != nil && cfg.Compress == CodecTopK {
				finalRatio = eng.ratio
			}
		}
	})

	simTime, compute, communication := cfg.simSplits()
	return &Result{
		Algo:        AlgoSASGD,
		P:           p,
		T:           cfg.Interval,
		FinalT:      finalT,
		Curve:       rec.points(),
		Samples:     samples.Load(),
		SimTime:     simTime,
		SimCompute:  compute,
		SimComm:     communication,
		WordsMoved:  group.WordsSent(),
		Comm:        group.Stats(),
		CompressK:   finalRatio,
		FinalParams: finalParams,
	}
}

// schedEngine is one learner's communication-schedule state: the
// T-scheduler, the optional hierarchy, the optional delayed double
// buffer, and the optional compression codec. All buffers are
// preallocated; a boundary allocates nothing.
type schedEngine struct {
	cfg   Config
	group *comm.Group
	rank  int
	p     int
	sched *tScheduler
	tk    *obs.Track

	gs   []float64 // current interval accumulator (learner-owned)
	xref []float64 // globally consistent reference x′

	// Hierarchy (nil/unused when HierGroups < 2).
	hier      *comm.Hier
	w         []float64 // island working reference
	acc       []float64 // island aggregate since the last outer exchange
	gpInner   float64   // γp·p/q — the island-local model-averaging rate
	outerLeft int       // boundaries until the next outer exchange
	hchunk    int       // chunk size of the hierarchical sub-collectives

	// Bucketed worker + delayed double buffer.
	segs     []comm.Segment
	b        *comm.BucketedAllreduce
	handles  []comm.Handle
	dsync    *comm.DeferSync
	delayed  bool
	pend     []float64 // the in-flight / pending-application aggregate
	pendAt   int       // origin boundary of the pending aggregate
	inflight bool      // a delayed launch is pending application
	waited   bool      // the pending launch's handles have been waited out
	chunk    int
	rhd      bool

	// Compression codec state (mirrors overlapAggregator's).
	comp     comm.Compressor
	res      []float64
	ratio    float64
	k0       float64
	adaptOn  bool
	adaptBuf [2]float64

	fc *fleetCollector // boundary health telemetry (nil = metrics off)

	bidx int // boundaries completed
}

func newSchedEngine(cfg Config, group *comm.Group, rank, p int, net *nn.Network, gs, xref []float64, tk *obs.Track) *schedEngine {
	e := &schedEngine{
		cfg:   cfg,
		group: group,
		rank:  rank,
		p:     p,
		sched: newTScheduler(cfg),
		tk:    tk,
		gs:    gs,
		xref:  xref,
	}
	m := len(gs)
	psegs := net.ParamSegments()
	if len(psegs) > 0 {
		e.segs, _ = planBuckets(psegs, cfg.CommBuckets)
	}
	e.chunk = cfg.CommChunk
	e.hchunk = cfg.CommChunk
	if cfg.Allreduce != AllreducePTree {
		// Monolithic trees: one chunk per bucket / per whole-buffer
		// collective, matching the unchunked tree's wire schedule (see
		// newOverlapAggregator).
		for _, s := range e.segs {
			if s.Len > e.chunk {
				e.chunk = s.Len
			}
		}
		e.hchunk = m
	}
	e.rhd = cfg.Allreduce == AllreduceRHD
	if cfg.HierGroups >= 2 {
		e.hier = comm.NewHier(group, cfg.HierGroups)
		e.w = append([]float64(nil), xref...)
		e.acc = make([]float64, m)
		// γp·p/q: with γp = γ/p this is γ/q — the rate at which an
		// island-only aggregation IS model averaging over the island's q
		// replicas, so w tracks the island mean between outer exchanges.
		e.gpInner = cfg.GammaP * float64(p) / float64(e.hier.IslandSize(rank))
		e.outerLeft = cfg.TOuter
	}
	if cfg.compressionActive() {
		e.comp = cfg.newCompressor()
		e.res = make([]float64, m)
		e.ratio = cfg.CompressK
		e.k0 = cfg.CompressK
		e.adaptOn = cfg.adaptActive()
	}
	e.delayed = cfg.DelayedApply && len(e.segs) > 0
	// The bucketed worker carries every delayed launch and every codec
	// collective (the codecs own the per-bucket schedule; running them
	// through the worker keeps the wire path identical to the legacy
	// compressed loop).
	if (e.delayed || e.comp != nil) && len(e.segs) > 0 {
		e.b = comm.NewBucketedAllreduce(group, rank, e.segs, 0)
		e.handles = make([]comm.Handle, len(e.segs))
	}
	if e.delayed {
		e.pend = make([]float64, m)
		e.dsync = &comm.DeferSync{}
		e.b.SetDeferSync(e.dsync)
	} else if e.hier != nil && e.comp != nil {
		// The eager compressed outer exchange decodes into pend too.
		e.pend = make([]float64, m)
	}
	return e
}

// onBoundary runs one communication boundary for this learner: params is
// the local replica (reset to the appropriate reference on return), and
// the engine's current accumulator eng.gs holds the interval's gradient
// sum (cleared on return).
func (e *schedEngine) onBoundary(params []float64) {
	if e.fc != nil {
		// Drift against the reference params was reset to at the last
		// boundary: the island working reference under a hierarchy, the
		// global reference otherwise.
		ref := e.xref
		if e.hier != nil {
			ref = e.w
		}
		e.fc.boundaryStart(params, ref)
	}
	switch {
	case e.hier != nil:
		e.hierBoundary(params)
	case e.delayed:
		e.delayedFlat(params)
	default:
		e.flatEager(params)
	}
	e.bidx++
}

// metricsBoundary ships the boundary's health frame. Each branch calls
// it at its own safe point: after the boundary's collectives, and before
// any delayed launch goes into flight (learner collectives must not
// overlap the worker's mailbox use).
func (e *schedEngine) metricsBoundary() {
	if e.fc == nil {
		return
	}
	var ratio, s2, r2 float64
	if e.comp != nil {
		ratio = e.ratio
		s2, r2 = e.comp.Totals()
	}
	e.fc.boundaryEnd(e.group, e.rank, e.sched.T(), ratio, s2, r2)
}

// flatEager is the legacy boundary — allreduce gs, x′ ← x′ − γp·gs,
// x ← x′, gs ← 0 — with the T-scheduler's drift step spliced between
// the reference update and the replica reset (where x̄ = x′ exactly).
// Under TSchedStatic the drift step is a no-op and the operation
// sequence is bitwise the legacy trainSASGD boundary, which the static
// pin test relies on.
func (e *schedEngine) flatEager(params []float64) {
	g, rank, tk := e.group, e.rank, e.tk
	ws := tk.Begin()
	if e.comp != nil {
		e.launch(e.gs, g.Clock(rank).Now())
		e.waitHandles()
	} else {
		switch e.cfg.Allreduce {
		case AllreduceRing:
			g.AllreduceRing(rank, e.gs)
		case AllreducePTree:
			g.AllreduceTreeChunked(rank, e.gs, e.cfg.CommChunk)
		case AllreduceRHD:
			g.AllreduceRHD(rank, e.gs)
		default:
			g.AllreduceTree(rank, e.gs)
		}
	}
	tk.End(obs.PhaseAggWait, ws)
	if e.cfg.AggHook != nil && rank == 0 && e.comp == nil {
		e.cfg.AggHook(e.bidx, e.gs)
	}
	as := tk.Begin()
	tensor.Axpy(-e.cfg.GammaP, e.gs, e.xref)
	e.sched.advance(g, rank, e.p, params, e.xref)
	tensor.Copy(params, e.xref)
	clear(e.gs)
	tk.End(obs.PhaseAggApply, as)
	e.adaptK()
	e.metricsBoundary()
}

// delayedFlat is the DaSGD boundary: apply the PREVIOUS boundary's
// aggregate (in flight since then, now complete), then launch this
// boundary's gs through the worker and swap it with the freed pending
// buffer. The launched collective runs while the learners compute the
// next interval, so the transfer hides behind T full batches.
func (e *schedEngine) delayedFlat(params []float64) {
	g, rank, tk := e.group, e.rank, e.tk
	applied := e.inflight
	ws := tk.Begin()
	e.drainHandles()
	tk.End(obs.PhaseAggWait, ws)
	as := tk.Begin()
	if applied {
		if e.cfg.AggHook != nil && rank == 0 && e.comp == nil {
			e.cfg.AggHook(e.pendAt, e.pend)
		}
		tensor.Axpy(-e.cfg.GammaP, e.pend, e.xref)
		clear(e.pend)
	}
	e.sched.advance(g, rank, e.p, params, e.xref)
	tensor.Copy(params, e.xref)
	tk.End(obs.PhaseAggApply, as)
	if applied {
		e.adaptK()
	}
	e.metricsBoundary()
	e.launch(e.gs, g.Clock(rank).Now())
	e.gs, e.pend = e.pend, e.gs
	e.pendAt = e.bidx
	e.inflight = true
	e.waited = false
}

// hierBoundary runs the two-level schedule: the intra-island allreduce
// and island-mean update every boundary, the cross-island exchange every
// TOuter-th boundary (eager or delayed). The replica resets to the
// island working reference w, which rebases onto the global reference
// whenever an outer exchange lands.
func (e *schedEngine) hierBoundary(params []float64) {
	g, rank, tk := e.group, e.rank, e.tk
	// An outer exchange launched at the previous boundary must finish
	// before ANY learner collective reuses the mailboxes: the fabric
	// matches messages by (from, to) alone, so an in-flight fan-out would
	// alias against this boundary's intra allreduce (or the adaptive
	// scheduler's drift allreduce). Draining here bounds the hiding
	// window to one inner interval of compute; the APPLICATION still
	// waits for the next outer boundary.
	if e.delayed {
		ws := tk.Begin()
		e.drainHandles()
		tk.End(obs.PhaseAggWait, ws)
	}
	ws := tk.Begin()
	e.hier.AllreduceIntra(rank, e.gs, e.hchunk, g.Clock(rank).Now())
	tk.End(obs.PhaseAggWait, ws)
	as := tk.Begin()
	tensor.Axpy(1, e.gs, e.acc)
	tensor.Axpy(-e.gpInner, e.gs, e.w)
	tk.End(obs.PhaseAggApply, as)
	e.outerLeft--
	launch := false
	if e.outerLeft == 0 {
		e.outerLeft = e.cfg.TOuter
		if e.delayed {
			e.hierOuterDelayed()
			launch = true
		} else {
			e.hierOuterEager()
		}
	}
	as = tk.Begin()
	e.sched.advance(g, rank, e.p, params, e.w)
	tensor.Copy(params, e.w)
	clear(e.gs)
	tk.End(obs.PhaseAggApply, as)
	e.metricsBoundary()
	// Launch the staged outer exchange only after every learner
	// collective of this boundary has run; it is drained at the top of
	// the next boundary, so the channels are exclusively the worker's for
	// exactly the compute interval in between.
	if launch {
		e.launch(e.pend, g.Clock(rank).Now())
		e.inflight = true
		e.waited = false
	}
}

// hierOuterEager exchanges acc across islands now and folds it into the
// global reference: x′ ← x′ − γp·acc, w ← x′, acc ← 0. Dense runs use
// the leader tree + island fan-out; compressed runs run the codec over
// the FULL group with the leaders contributing acc and everyone else
// zeros, so each island's aggregate is counted exactly once and every
// rank ends holding the dense decoded global value (a zero contribution
// leaves a zero error-feedback residual, so non-leaders stay exact).
func (e *schedEngine) hierOuterEager() {
	g, rank, tk := e.group, e.rank, e.tk
	ws := tk.Begin()
	if e.comp != nil {
		if e.hier.IsLeader(rank) {
			tensor.Copy(e.pend, e.acc)
		} else {
			clear(e.pend)
		}
		e.launch(e.pend, g.Clock(rank).Now())
		e.waitHandles()
		tk.End(obs.PhaseAggWait, ws)
		as := tk.Begin()
		tensor.Axpy(-e.cfg.GammaP, e.pend, e.xref)
		tensor.Copy(e.w, e.xref)
		clear(e.acc)
		tk.End(obs.PhaseAggApply, as)
		e.adaptK()
		return
	}
	e.hier.AllreduceInter(rank, e.acc, e.hchunk, g.Clock(rank).Now())
	tk.End(obs.PhaseAggWait, ws)
	as := tk.Begin()
	tensor.Axpy(-e.cfg.GammaP, e.acc, e.xref)
	tensor.Copy(e.w, e.xref)
	clear(e.acc)
	tk.End(obs.PhaseAggApply, as)
}

// hierOuterDelayed applies the outer exchange launched at the previous
// outer boundary (already drained — only the application was deferred),
// rebases w on the updated global reference, then stages this round's
// acc into the pending buffer. The caller launches the staged exchange
// after the boundary's remaining learner collectives, so the transfer
// hides behind the following interval of compute.
func (e *schedEngine) hierOuterDelayed() {
	rank, tk := e.rank, e.tk
	applied := e.inflight
	ws := tk.Begin()
	e.drainHandles()
	tk.End(obs.PhaseAggWait, ws)
	as := tk.Begin()
	if applied {
		tensor.Axpy(-e.cfg.GammaP, e.pend, e.xref)
	}
	tensor.Copy(e.w, e.xref)
	if e.comp != nil && !e.hier.IsLeader(rank) {
		clear(e.pend)
	} else {
		tensor.Copy(e.pend, e.acc)
	}
	clear(e.acc)
	tk.End(obs.PhaseAggApply, as)
	if applied {
		e.adaptK()
	}
}

// launch submits every bucket of buf through the worker in descending
// index order — the same fixed global order the overlap path uses — with
// the policy's collective: the codec when compressing, the inter-island
// exchange under a hierarchy, else the configured dense tree/rhd.
func (e *schedEngine) launch(buf []float64, ready float64) {
	for bi := len(e.segs) - 1; bi >= 0; bi-- {
		switch {
		case e.comp != nil:
			e.handles[bi] = e.b.BeginCompressed(bi, buf, e.res, e.comp, e.ratio, ready)
		case e.hier != nil:
			e.handles[bi] = e.b.BeginHierInter(bi, buf, e.hier, e.chunk, ready)
		case e.rhd:
			e.handles[bi] = e.b.BeginRHD(bi, buf, ready)
		default:
			e.handles[bi] = e.b.Begin(bi, buf, e.chunk, ready)
		}
	}
}

// waitHandles blocks until every launched bucket has completed (eager
// uses of the worker: same-boundary launch + wait).
func (e *schedEngine) waitHandles() {
	for i := range e.handles {
		e.handles[i].Wait()
	}
}

// drainHandles waits out the in-flight delayed launch, if one exists and
// has not been drained yet, and folds its deferred clock syncs into the
// rank's simulated clock. Waiting touches only this rank's handles — no
// group collective — so call sites need no cross-rank alignment.
func (e *schedEngine) drainHandles() {
	if !e.inflight || e.waited {
		return
	}
	for i := range e.handles {
		e.handles[i].Wait()
	}
	e.dsync.Join(e.group.Clock(e.rank))
	e.waited = true
}

// drain is called before every epoch barrier: a delayed launch must not
// stay in flight across a learner-driven collective, because the worker
// and the learner would race for the same per-pair mailboxes. The
// pending aggregate stays pending — only the transfer is waited out —
// so the one-boundary-delay semantics are unchanged; the epoch edge just
// stops hiding whatever tail of the transfer was still outstanding.
func (e *schedEngine) drain() {
	if !e.delayed {
		return
	}
	ws := e.tk.Begin()
	e.drainHandles()
	e.tk.End(obs.PhaseAggWait, ws)
}

// flush applies a still-pending delayed aggregate and resets the replica
// to the resulting reference, leaving the run globally consistent for
// final evaluation. Local steps taken since the last boundary are
// discarded by the reset, exactly as a boundary discards them.
func (e *schedEngine) flush(params []float64) {
	if !e.delayed || !e.inflight {
		return
	}
	tk := e.tk
	ws := tk.Begin()
	e.drainHandles()
	tk.End(obs.PhaseAggWait, ws)
	as := tk.Begin()
	if e.cfg.AggHook != nil && e.rank == 0 && e.comp == nil && e.hier == nil {
		e.cfg.AggHook(e.pendAt, e.pend)
	}
	tensor.Axpy(-e.cfg.GammaP, e.pend, e.xref)
	clear(e.pend)
	if e.hier != nil {
		tensor.Copy(e.w, e.xref)
		tensor.Copy(params, e.w)
	} else {
		tensor.Copy(params, e.xref)
	}
	tk.End(obs.PhaseAggApply, as)
	e.inflight = false
}

// adaptK mirrors overlapAggregator.adaptK: allreduce the codec's capture
// stats and move the working top-k fraction in lockstep.
func (e *schedEngine) adaptK() {
	if !e.adaptOn {
		return
	}
	e.adaptBuf[0], e.adaptBuf[1] = e.comp.TakeCapture()
	e.group.AllreduceTree(e.rank, e.adaptBuf[:])
	e.ratio = nextRatio(e.ratio, e.k0, e.adaptBuf[0], e.adaptBuf[1])
}

// close shuts down the comm worker, if any.
func (e *schedEngine) close() {
	if e.b != nil {
		e.b.Close()
	}
}
