package theory

import (
	"fmt"
	"math"
)

// The paper derives Figure 3's learning rate by *estimating* the
// analysis constants on the actual workload: "We estimate the Lipschitz
// constant L and an upper bound on gradient variance σ² for CIFAR-10.
// We bound Df as f(x₁)". This file implements that estimation procedure
// against an abstract gradient oracle so it works for any model/dataset
// pair (internal/experiments adapts a core.Problem to the oracle).

// GradientOracle exposes the operations the estimators need. All methods
// operate on the oracle's current parameter vector.
type GradientOracle struct {
	// Dim is the parameter count.
	Dim int
	// Loss returns the full-batch objective f(x) at parameters x.
	Loss func(x []float64) float64
	// FullGrad writes ∇f(x) (full-batch gradient) into out.
	FullGrad func(x, out []float64)
	// SampleGrad writes G(x, z) for one freshly drawn random minibatch z
	// into out.
	SampleGrad func(x, out []float64)
	// Init returns the initial parameter vector x₁ (copied by callers).
	Init func() []float64
	// Perturb returns a random unit direction for Lipschitz probing.
	Perturb func() []float64
}

func (o *GradientOracle) validate() {
	if o == nil || o.Dim <= 0 || o.Loss == nil || o.FullGrad == nil || o.SampleGrad == nil || o.Init == nil || o.Perturb == nil {
		panic("theory: incomplete gradient oracle")
	}
}

// EstimateOptions controls the sampling effort of EstimateConstants.
type EstimateOptions struct {
	// VarianceSamples is the number of minibatch gradients drawn to
	// estimate σ² (default 16).
	VarianceSamples int
	// LipschitzProbes is the number of random directions used to lower-
	// bound L by secant slopes ‖∇f(x+εu) − ∇f(x)‖ / ε (default 8).
	LipschitzProbes int
	// ProbeStep is the perturbation radius ε (default 1e-2).
	ProbeStep float64
}

func (e EstimateOptions) withDefaults() EstimateOptions {
	if e.VarianceSamples <= 0 {
		e.VarianceSamples = 16
	}
	if e.LipschitzProbes <= 0 {
		e.LipschitzProbes = 8
	}
	if e.ProbeStep <= 0 {
		e.ProbeStep = 1e-2
	}
	return e
}

// EstimateConstants measures the analysis constants the way the paper
// does:
//
//   - Df is bounded by f(x₁) (valid whenever f ≥ 0, as for cross-entropy).
//   - σ² is the empirical mean of ‖G(x₁, z) − ∇f(x₁)‖² over fresh
//     minibatches z.
//   - L is lower-bounded by the largest observed secant slope of the
//     gradient along random directions at x₁ (an estimate, as in the
//     paper — the true constant is not computable for deep networks).
//
// M must be the minibatch size SampleGrad draws, so the returned
// Constants plug directly into the bounds.
func EstimateConstants(o *GradientOracle, m int, opt EstimateOptions) Constants {
	o.validate()
	if m <= 0 {
		panic(fmt.Sprintf("theory: EstimateConstants needs a positive minibatch size, got %d", m))
	}
	opt = opt.withDefaults()
	x := o.Init()
	if len(x) != o.Dim {
		panic("theory: oracle Init length does not match Dim")
	}

	// Df ≤ f(x₁) for non-negative objectives.
	df := o.Loss(x)
	if df <= 0 {
		// A perfectly fit (or degenerate) starting point; keep the bound
		// positive so downstream formulas stay defined.
		df = 1e-12
	}

	// σ²: variance of the minibatch gradient around the full gradient.
	full := make([]float64, o.Dim)
	o.FullGrad(x, full)
	g := make([]float64, o.Dim)
	sigma2 := 0.0
	for s := 0; s < opt.VarianceSamples; s++ {
		o.SampleGrad(x, g)
		d2 := 0.0
		for i := range g {
			d := g[i] - full[i]
			d2 += d * d
		}
		sigma2 += d2
	}
	sigma2 /= float64(opt.VarianceSamples)
	if sigma2 <= 0 {
		sigma2 = 1e-12
	}

	// L: max secant slope of ∇f along random unit directions.
	l := 0.0
	xp := make([]float64, o.Dim)
	gp := make([]float64, o.Dim)
	for probe := 0; probe < opt.LipschitzProbes; probe++ {
		u := o.Perturb()
		if len(u) != o.Dim {
			panic("theory: oracle Perturb length does not match Dim")
		}
		norm := 0.0
		for _, v := range u {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			continue
		}
		for i := range xp {
			xp[i] = x[i] + opt.ProbeStep*u[i]/norm
		}
		o.FullGrad(xp, gp)
		diff := 0.0
		for i := range gp {
			d := gp[i] - full[i]
			diff += d * d
		}
		if slope := math.Sqrt(diff) / opt.ProbeStep; slope > l {
			l = slope
		}
	}
	if l <= 0 {
		l = 1e-12
	}

	return Constants{Df: df, L: l, Sigma2: sigma2, M: m}
}
