package theory

import (
	"math"
	"testing"
	"testing/quick"
)

var testConsts = Constants{Df: 10, L: 2, Sigma2: 4, M: 64}

func TestASGDBoundDecreasesInK(t *testing.T) {
	g := 0.001
	prev := math.Inf(1)
	for _, k := range []int{10, 100, 1000, 10000} {
		b := ASGDBound(testConsts, 4, k, g)
		if b >= prev {
			t.Errorf("bound did not decrease at K=%d: %g >= %g", k, b, prev)
		}
		prev = b
	}
}

func TestASGDBoundConstantTermsRemain(t *testing.T) {
	// Equation 1's K-independent terms: with constant γ the bound cannot
	// go below σ²Lγ + 2σ²L²Mpγ².
	g := 0.001
	floor := testConsts.Sigma2*testConsts.L*g +
		2*testConsts.Sigma2*testConsts.L*testConsts.L*float64(testConsts.M)*4*g*g
	b := ASGDBound(testConsts, 4, 100_000_000, g)
	if b < floor {
		t.Errorf("bound %g below its K-independent floor %g", b, floor)
	}
	if b > floor*1.01 {
		t.Errorf("bound %g did not approach floor %g at huge K", b, floor)
	}
}

func TestASGDBoundIncreasesInP(t *testing.T) {
	g := 0.001
	if ASGDBound(testConsts, 1, 1000, g) >= ASGDBound(testConsts, 32, 1000, g) {
		t.Error("bound not increasing in p at fixed γ")
	}
}

func TestASGDConstraint(t *testing.T) {
	// Tiny γ always feasible; huge γ never.
	if !ASGDConstraintOK(testConsts, 8, 1e-9) {
		t.Error("tiny γ rejected")
	}
	if ASGDConstraintOK(testConsts, 8, 1.0) {
		t.Error("huge γ accepted")
	}
}

func TestAlphaKRoundTrip(t *testing.T) {
	for _, alpha := range []float64{4, 16, 64} {
		k := KForAlpha(testConsts, alpha)
		got := Alpha(testConsts, k)
		if math.Abs(got-alpha)/alpha > 0.01 {
			t.Errorf("Alpha(KForAlpha(%g)) = %g", alpha, got)
		}
	}
}

func TestCubicRootSolvesEquation7(t *testing.T) {
	for _, p := range []int{1, 2, 16, 64} {
		for _, alpha := range []float64{1, 16, 100} {
			c := cubicRoot(float64(p), alpha)
			resid := 4*float64(p)*c*c*c + alpha*c*c - 2*alpha
			if math.Abs(resid) > 1e-6*alpha {
				t.Errorf("p=%d α=%g: residual %g at root %g", p, alpha, resid, c)
			}
		}
	}
}

func TestOptimalCRespectsConstraint(t *testing.T) {
	for _, p := range []int{1, 4, 16, 64} {
		for _, alpha := range []float64{2, 16, 64} {
			c := OptimalC(p, alpha)
			if c <= 0 {
				t.Fatalf("OptimalC(%d, %g) = %g", p, alpha, c)
			}
			if c > CMax(p, alpha)*(1+1e-9) {
				t.Errorf("OptimalC(%d, %g) = %g exceeds CMax %g", p, alpha, c, CMax(p, alpha))
			}
		}
	}
}

func TestOptimalCIsMinimum(t *testing.T) {
	// Perturbing around the optimum must not improve the objective.
	for _, p := range []int{2, 16} {
		alpha := 20.0
		c := OptimalC(p, alpha)
		best := Objective(p, alpha, c)
		for _, f := range []float64{0.8, 0.9, 1.1, 1.2} {
			cand := c * f
			if cand > CMax(p, alpha) {
				continue
			}
			if Objective(p, alpha, cand) < best-1e-9 {
				t.Errorf("p=%d: objective at %g·c beats optimum", p, f)
			}
		}
	}
}

// TestTheorem1GapFactor checks the paper's statement: for 16 ≤ α ≤ p the
// optimal guarantees for 1 and p learners differ by ≈ p/α. The paper's
// own example: p = 32, α ≈ 16 → factor ≈ 2.
func TestTheorem1GapFactor(t *testing.T) {
	cases := []struct {
		p     int
		alpha float64
	}{
		{32, 16}, {64, 16}, {64, 32}, {128, 16},
	}
	for _, c := range cases {
		got := GapFactor(c.p, c.alpha)
		want := float64(c.p) / c.alpha
		// "approximately p/α": Theorem 1's derivation drops lower-order
		// terms, so allow 35% slack.
		if got < want*0.65 || got > want*1.35 {
			t.Errorf("GapFactor(p=%d, α=%g) = %.3f, want ≈ %.3f", c.p, c.alpha, got, want)
		}
	}
}

func TestTheorem1PaperExample(t *testing.T) {
	// "when p = 32, α is roughly 16 ... can differ by 2".
	got := GapFactor(32, 16)
	if got < 1.5 || got > 2.7 {
		t.Errorf("paper example gap = %.3f, want ≈ 2", got)
	}
}

func TestGapFactorMonotoneInP(t *testing.T) {
	alpha := 16.0
	prev := 0.0
	for _, p := range []int{16, 32, 64, 128} {
		g := GapFactor(p, alpha)
		if g <= prev {
			t.Errorf("gap factor not increasing at p=%d: %g <= %g", p, g, prev)
		}
		prev = g
	}
}

func TestTheoryLearningRateSmallerThanPractical(t *testing.T) {
	// The paper: with their CIFAR-10 estimates the theory rate is ≈0.005,
	// far below the practical 0.1. Generic property: for large K the
	// prescribed rate is small.
	k := KForAlpha(testConsts, 16)
	lr := TheoryLearningRate(testConsts, k)
	if lr >= 0.1 {
		t.Errorf("theory learning rate %g not below practical 0.1", lr)
	}
}

func TestSASGDBoundMatchesTheorem2Form(t *testing.T) {
	// Hand-evaluate the three terms for one configuration.
	c := Constants{Df: 1, L: 1, Sigma2: 1, M: 2}
	p, tt, k := 2, 3, 5
	gamma, gammaP := 0.01, 0.02
	s := float64(c.M) * float64(tt) * float64(k) * float64(p)
	want := 2*c.Df/(s*gammaP) + 2*c.L*c.L*c.Sigma2*gammaP*gamma*float64(c.M)*float64(tt) + c.L*c.Sigma2*gammaP
	got := SASGDBound(c, p, tt, k, gamma, gammaP)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("SASGDBound = %g, want %g", got, want)
	}
}

func TestSASGDConstraint(t *testing.T) {
	if !SASGDConstraintOK(testConsts, 8, 50, 1e-9, 1e-9) {
		t.Error("tiny rates rejected")
	}
	if SASGDConstraintOK(testConsts, 8, 50, 0.1, 0.1) {
		t.Error("large rates accepted")
	}
}

// TestTheorem4Monotonicity: at fixed S, the best achievable Theorem 2
// guarantee worsens as T grows — increasing T always increases sample
// complexity.
func TestTheorem4Monotonicity(t *testing.T) {
	s := 1e7
	prev := 0.0
	for i, tt := range []int{1, 5, 25, 50, 200} {
		b := BestSASGDBound(testConsts, 8, tt, s)
		if i > 0 && b <= prev {
			t.Errorf("best bound not increasing at T=%d: %g <= %g", tt, b, prev)
		}
		prev = b
	}
}

// TestCorollary3Threshold: the K threshold grows when T moves away from
// p (the (max{p,T}+1)²/(pT) shape), and the asymptotic bound is the
// O(1/sqrt(S)) rate.
func TestCorollary3Threshold(t *testing.T) {
	p := 8
	kAtP := CorollaryKThreshold(testConsts, p, p)
	kAtBig := CorollaryKThreshold(testConsts, p, 64*p)
	if kAtBig <= kAtP {
		t.Errorf("threshold did not grow with large T: %g <= %g", kAtBig, kAtP)
	}
	// Asymptotic bound halves when S quadruples.
	b1 := CorollaryAsymptoticBound(testConsts, 1e6)
	b2 := CorollaryAsymptoticBound(testConsts, 4e6)
	if math.Abs(b1/b2-2) > 1e-9 {
		t.Errorf("asymptotic bound not O(1/sqrt(S)): ratio %g", b1/b2)
	}
}

func TestCorollaryGammaShrinksWithS(t *testing.T) {
	if CorollaryGamma(testConsts, 1e4) <= CorollaryGamma(testConsts, 1e6) {
		t.Error("Corollary 3 γ not decreasing in S")
	}
}

// Property: for p=1, SASGD with T=1 and ASGD bounds agree up to the
// bounded constant-term differences — both are O(1/(Kγ)) + O(γ) shapes.
// We verify a weaker but exact property: both bounds diverge as γ→0 and
// as γ→∞, so both have interior minimizers.
func TestBoundsHaveInteriorMinimum(t *testing.T) {
	f := func(seed int64) bool {
		k := 1000
		small := ASGDBound(testConsts, 1, k, 1e-12)
		mid := ASGDBound(testConsts, 1, k, 0.001)
		large := ASGDBound(testConsts, 1, k, 100)
		return small > mid && large > mid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3}); err != nil {
		t.Error(err)
	}
}

func TestPanicsOnInvalidInputs(t *testing.T) {
	cases := map[string]func(){
		"constants": func() { ASGDBound(Constants{}, 1, 1, 0.1) },
		"gamma":     func() { ASGDBound(testConsts, 1, 1, 0) },
		"objective": func() { Objective(1, 16, 0) },
		"optimalc":  func() { OptimalC(0, 16) },
		"sasgd":     func() { SASGDBound(testConsts, 0, 1, 1, 0.1, 0.1) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic on invalid input", name)
				}
			}()
			fn()
		}()
	}
}
