// Package theory implements the paper's convergence analysis in
// executable form: the ASGD convergence-rate guarantee (Equation 1 with
// constraint Equation 2, from Lian et al.), the optimal-learning-rate
// cubic (Equation 7) and the resulting Theorem 1 gap factor between 1
// and p learners, the SASGD guarantee (Theorem 2), the asymptotic
// threshold of Corollary 3, and the Theorem 4 monotonicity of sample
// complexity in T. The experiment drivers print these values next to the
// measured runs, and the tests verify every claim the paper states about
// them (gap ≈ p/α for 16 ≤ α ≤ p, guarantee worsens with T, and so on).
//
// Notation follows the paper's Table III: Df = f(x₁) − f(x*), L the
// Lipschitz constant of ∇f, σ² the gradient-variance bound, M the
// minibatch size, p the learner count, T the aggregation interval, γ the
// local learning rate and γp the global one, K the update count, and
// S = M·T·K·p the total samples processed.
package theory

import (
	"fmt"
	"math"
)

// Constants holds the problem constants of the analysis.
type Constants struct {
	Df     float64 // initial suboptimality f(x₁) − f(x*)
	L      float64 // Lipschitz constant of the gradient
	Sigma2 float64 // variance bound σ² on the stochastic gradient
	M      int     // minibatch size
}

func (c Constants) validate() {
	if c.Df <= 0 || c.L <= 0 || c.Sigma2 <= 0 || c.M <= 0 {
		panic(fmt.Sprintf("theory: invalid constants %+v (all must be positive)", c))
	}
}

// ASGDBound evaluates the right-hand side of Equation 1: the guaranteed
// upper bound on the average expected gradient norm R̄_K after K updates
// of ASGD with p learners at learning rate gamma.
//
//	R̄_K ≤ 2·Df/(M·K·γ) + σ²·L·γ + 2·σ²·L²·M·p·γ²
func ASGDBound(c Constants, p, k int, gamma float64) float64 {
	c.validate()
	if p <= 0 || k <= 0 || gamma <= 0 {
		panic(fmt.Sprintf("theory: ASGDBound needs positive p, K, γ (got %d, %d, %g)", p, k, gamma))
	}
	m := float64(c.M)
	return 2*c.Df/(m*float64(k)*gamma) +
		c.Sigma2*c.L*gamma +
		2*c.Sigma2*c.L*c.L*m*float64(p)*gamma*gamma
}

// ASGDConstraintOK reports whether gamma satisfies Equation 2,
// L·M·γ + 2·L²·M²·p²·γ² ≤ 1, the validity condition of the bound.
func ASGDConstraintOK(c Constants, p int, gamma float64) bool {
	c.validate()
	m := float64(c.M)
	return c.L*m*gamma+2*c.L*c.L*m*m*float64(p*p)*gamma*gamma <= 1
}

// Alpha computes the paper's α = sqrt(M·K·L·Df/σ²)... specifically, the
// paper parameterizes γ = c·sqrt(Df/(M·K·L·σ²)) = c/(α·M·L) with
// α = sqrt(K·L·Df/(M·σ²))·M·L·sqrt(M/(M)) — operationally, α is defined
// by K = α²·M·L·Df/σ², which is the form the proof of Theorem 1 uses and
// the form we invert here.
func Alpha(c Constants, k int) float64 {
	c.validate()
	return math.Sqrt(float64(k) * c.Sigma2 / (float64(c.M) * c.L * c.Df))
}

// KForAlpha inverts Alpha: the number of updates K that makes the given
// α, K = α²·M·L·Df/σ².
func KForAlpha(c Constants, alpha float64) int {
	c.validate()
	return int(math.Ceil(alpha * alpha * float64(c.M) * c.L * c.Df / c.Sigma2))
}

// NormalizedBound evaluates Equation 4, the bound expressed in the
// paper's normalized form as a function of c (where γ = c/(α·M·L)):
//
//	R̄_K ≤ (2/c + c + 2·p·c²/α) · (1/α) · (σ²/M)
//
// The σ²/(α·M) factor is common to all p, so comparisons use the
// bracketed expression; Objective returns just that bracket.
func NormalizedBound(c Constants, p int, alpha, cc float64) float64 {
	return Objective(p, alpha, cc) * c.Sigma2 / (alpha * float64(c.M))
}

// Objective is the Equation 5 objective 2/c + c + 2·p·c²/α minimized
// over c to find the optimal learning rate.
func Objective(p int, alpha, c float64) float64 {
	if c <= 0 {
		panic("theory: Objective needs c > 0")
	}
	return 2/c + c + 2*float64(p)*c*c/alpha
}

// CMax is the Equation 6 upper limit of the feasible region:
// c ≤ α/(4p²)·(−1 + sqrt(1 + 8p²)).
func CMax(p int, alpha float64) float64 {
	pf := float64(p)
	return alpha / (4 * pf * pf) * (-1 + math.Sqrt(1+8*pf*pf))
}

// OptimalC minimizes the Equation 5 objective over (0, CMax] — the
// optimal normalized learning rate. The unconstrained stationary point
// solves the Equation 7 cubic 4·p·c³ + α·c² − 2·α = 0; if it exceeds
// CMax the constrained optimum is CMax itself (the objective is
// decreasing up to the stationary point).
func OptimalC(p int, alpha float64) float64 {
	if p <= 0 || alpha <= 0 {
		panic(fmt.Sprintf("theory: OptimalC needs positive p, α (got %d, %g)", p, alpha))
	}
	root := cubicRoot(float64(p), alpha)
	if cmax := CMax(p, alpha); root > cmax {
		return cmax
	}
	return root
}

// cubicRoot finds the unique positive root of 4·p·c³ + α·c² − 2·α = 0
// by bisection (the function is −2α < 0 at c=0 and strictly increasing
// for c > 0, so exactly one positive root exists).
func cubicRoot(p, alpha float64) float64 {
	f := func(c float64) float64 { return 4*p*c*c*c + alpha*c*c - 2*alpha }
	lo, hi := 0.0, 1.0
	for f(hi) < 0 {
		hi *= 2
		if hi > 1e12 {
			panic("theory: cubic root bracketing failed")
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if f(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// GapFactor computes Theorem 1's ratio: the optimal ASGD convergence
// guarantee for p learners divided by the guarantee for 1 learner, at
// the same α (same K). The theorem states the ratio is approximately p/α
// when 16 ≤ α ≤ p.
func GapFactor(p int, alpha float64) float64 {
	c1 := OptimalC(1, alpha)
	cp := OptimalC(p, alpha)
	return Objective(p, alpha, cp) / Objective(1, alpha, c1)
}

// TheoryLearningRate returns the learning rate sqrt(Df/(M·K·L·σ²)) that
// the ASGD analysis of Lian et al. prescribes — the rate the paper plugs
// in for Figure 3 (≈0.005 on their CIFAR-10 setup, versus the practical
// 0.1).
func TheoryLearningRate(c Constants, k int) float64 {
	c.validate()
	if k <= 0 {
		panic("theory: TheoryLearningRate needs K > 0")
	}
	return math.Sqrt(c.Df / (float64(c.M) * float64(k) * c.L * c.Sigma2))
}

// SASGDBound evaluates Theorem 2: after K global allreduce updates of
// SASGD with S = M·T·K·p samples processed,
//
//	(1/K)·Σ E‖∇f(x_k)‖² ≤ 2·Df/(S·γp) + 2·L²·σ²·γp·γ·M·T + L·σ²·γp
func SASGDBound(c Constants, p, t, k int, gamma, gammaP float64) float64 {
	c.validate()
	if p <= 0 || t <= 0 || k <= 0 || gamma <= 0 || gammaP <= 0 {
		panic("theory: SASGDBound needs positive arguments")
	}
	m := float64(c.M)
	s := m * float64(t) * float64(k) * float64(p)
	return 2*c.Df/(s*gammaP) +
		2*c.L*c.L*c.Sigma2*gammaP*gamma*m*float64(t) +
		c.L*c.Sigma2*gammaP
}

// SASGDConstraintOK reports whether (γ, γp) satisfy Theorem 2's
// condition γp·L·M·T·p + 2·L²·M²·T²·γp·γ ≤ 1.
func SASGDConstraintOK(c Constants, p, t int, gamma, gammaP float64) bool {
	c.validate()
	m := float64(c.M)
	tf := float64(t)
	return gammaP*c.L*m*tf*float64(p)+2*c.L*c.L*m*m*tf*tf*gammaP*gamma <= 1
}

// CorollaryKThreshold returns Corollary 3's minimum number of global
// updates K for the asymptotic rate to apply:
//
//	K ≥ (4·M·L·Df/σ²) · (max{p, T}+1)² / (p·T)
func CorollaryKThreshold(c Constants, p, t int) float64 {
	c.validate()
	mx := float64(p)
	if t > p {
		mx = float64(t)
	}
	return 4 * float64(c.M) * c.L * c.Df / c.Sigma2 * (mx + 1) * (mx + 1) / (float64(p) * float64(t))
}

// CorollaryGamma returns Corollary 3's γ = γp = sqrt(2·Df/(S·σ²)).
func CorollaryGamma(c Constants, s float64) float64 {
	c.validate()
	if s <= 0 {
		panic("theory: CorollaryGamma needs S > 0")
	}
	return math.Sqrt(2 * c.Df / (s * c.Sigma2))
}

// CorollaryAsymptoticBound returns the Corollary 3 guarantee
// 4·sqrt(Df·L·σ²/S) that holds once K exceeds the threshold.
func CorollaryAsymptoticBound(c Constants, s float64) float64 {
	c.validate()
	return 4 * math.Sqrt(c.Df*c.L*c.Sigma2/s)
}

// BestSASGDBound minimizes the Theorem 2 bound over the feasible
// (γ = γp) range for fixed S (samples), the quantity whose monotone
// growth in T is Theorem 4. K is derived from S = M·T·K·p.
func BestSASGDBound(c Constants, p, t int, s float64) float64 {
	c.validate()
	m := float64(c.M)
	k := int(math.Max(1, math.Floor(s/(m*float64(t)*float64(p)))))
	// Feasible γ upper limit from the constraint with γ = γp:
	// γ·L·M·T·p + 2·L²·M²·T²·γ² ≤ 1.
	a := 2 * c.L * c.L * m * m * float64(t) * float64(t)
	b := c.L * m * float64(t) * float64(p)
	gmax := (-b + math.Sqrt(b*b+4*a)) / (2 * a)
	// The bound is convex in γ; golden-section search over (0, gmax].
	lo, hi := gmax*1e-9, gmax
	phi := (math.Sqrt(5) - 1) / 2
	f := func(g float64) float64 { return SASGDBound(c, p, t, k, g, g) }
	x1 := hi - phi*(hi-lo)
	x2 := lo + phi*(hi-lo)
	f1, f2 := f(x1), f(x2)
	for i := 0; i < 120; i++ {
		if f1 < f2 {
			hi, x2, f2 = x2, x1, f1
			x1 = hi - phi*(hi-lo)
			f1 = f(x1)
		} else {
			lo, x1, f1 = x1, x2, f2
			x2 = lo + phi*(hi-lo)
			f2 = f(x2)
		}
	}
	return math.Min(f1, f2)
}
