package theory

import (
	"math"
	"math/rand"
	"testing"
)

// quadraticOracle builds an oracle for f(x) = (L/2)‖x − x*‖² + c with
// known Lipschitz constant L and a minibatch gradient that adds i.i.d.
// noise of known total variance σ².
func quadraticOracle(dim int, l, sigma2 float64, seed int64) *GradientOracle {
	rng := rand.New(rand.NewSource(seed))
	xstar := make([]float64, dim)
	for i := range xstar {
		xstar[i] = rng.NormFloat64()
	}
	perDim := math.Sqrt(sigma2 / float64(dim))
	return &GradientOracle{
		Dim: dim,
		Loss: func(x []float64) float64 {
			s := 0.0
			for i := range x {
				d := x[i] - xstar[i]
				s += d * d
			}
			return l/2*s + 1
		},
		FullGrad: func(x, out []float64) {
			for i := range x {
				out[i] = l * (x[i] - xstar[i])
			}
		},
		SampleGrad: func(x, out []float64) {
			for i := range x {
				out[i] = l*(x[i]-xstar[i]) + rng.NormFloat64()*perDim
			}
		},
		Init: func() []float64 { return make([]float64, dim) },
		Perturb: func() []float64 {
			u := make([]float64, dim)
			for i := range u {
				u[i] = rng.NormFloat64()
			}
			return u
		},
	}
}

func TestEstimateConstantsQuadratic(t *testing.T) {
	const dim, l, sigma2 = 50, 3.0, 7.0
	o := quadraticOracle(dim, l, sigma2, 1)
	c := EstimateConstants(o, 4, EstimateOptions{VarianceSamples: 200, LipschitzProbes: 10})

	// L is exact for a quadratic: every secant slope equals L.
	if math.Abs(c.L-l)/l > 0.01 {
		t.Errorf("estimated L = %g, want %g", c.L, l)
	}
	// σ² is a 200-sample mean of a χ²-like statistic: within ~20%.
	if math.Abs(c.Sigma2-sigma2)/sigma2 > 0.2 {
		t.Errorf("estimated σ² = %g, want %g", c.Sigma2, sigma2)
	}
	// Df = f(x₁).
	if want := o.Loss(o.Init()); math.Abs(c.Df-want) > 1e-9 {
		t.Errorf("estimated Df = %g, want f(x₁) = %g", c.Df, want)
	}
	if c.M != 4 {
		t.Errorf("M = %d", c.M)
	}
}

func TestEstimateConstantsFeedsTheoryRate(t *testing.T) {
	o := quadraticOracle(20, 2, 5, 2)
	c := EstimateConstants(o, 8, EstimateOptions{})
	k := KForAlpha(c, 16)
	lr := TheoryLearningRate(c, k)
	if lr <= 0 || math.IsNaN(lr) {
		t.Fatalf("derived rate %g", lr)
	}
	// The derived rate must satisfy the paper's Equation 2 constraint for
	// p = 1 at this K by construction of the parameterization (c = 1/α
	// regime); sanity-check it is at least feasible for small p.
	if !ASGDConstraintOK(c, 1, lr/4) {
		t.Errorf("scaled-down theory rate infeasible: %g", lr)
	}
}

func TestEstimateConstantsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil oracle did not panic")
		}
	}()
	EstimateConstants(nil, 4, EstimateOptions{})
}

func TestEstimateConstantsBadBatchPanics(t *testing.T) {
	o := quadraticOracle(5, 1, 1, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("m=0 did not panic")
		}
	}()
	EstimateConstants(o, 0, EstimateOptions{})
}
