package theory_test

import (
	"fmt"

	"sasgd/internal/theory"
)

// The paper's Theorem 1 example: with p = 32 learners and α ≈ 16 (about
// 50 CIFAR-10 epochs), the optimal ASGD guarantee is about twice as far
// from optimal as the sequential one.
func ExampleGapFactor() {
	gap := theory.GapFactor(32, 16)
	fmt.Printf("p=32, alpha=16: guarantee gap = %.2f (Theorem 1 predicts ~= p/alpha = 2)\n", gap)
	// Output:
	// p=32, alpha=16: guarantee gap = 2.15 (Theorem 1 predicts ~= p/alpha = 2)
}

// OptimalC solves the Equation-7 cubic for the best normalized learning
// rate under the Equation-2 feasibility constraint.
func ExampleOptimalC() {
	c1 := theory.OptimalC(1, 16)
	c32 := theory.OptimalC(32, 16)
	fmt.Printf("c*(p=1) = %.3f, c*(p=32) = %.3f\n", c1, c32)
	// Output:
	// c*(p=1) = 1.236, c*(p=32) = 0.350
}

// Theorem 4 in action: at a fixed sample budget, the best achievable
// SASGD guarantee worsens as the aggregation interval T grows.
func ExampleBestSASGDBound() {
	c := theory.Constants{Df: 10, L: 2, Sigma2: 4, M: 64}
	b1 := theory.BestSASGDBound(c, 8, 1, 1e7)
	b50 := theory.BestSASGDBound(c, 8, 50, 1e7)
	fmt.Printf("T=1 bound < T=50 bound: %v\n", b1 < b50)
	// Output:
	// T=1 bound < T=50 bound: true
}
