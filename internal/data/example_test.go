package data_test

import (
	"fmt"

	"sasgd/internal/data"
)

// Generate the reduced-scale CIFAR-10 stand-in and partition it across
// four learners the way every distributed run does.
func ExampleGenImages() {
	cfg := data.SmallImageConfig()
	cfg.TrainN, cfg.TestN = 100, 20
	train, test := data.GenImages(cfg)
	shards := train.Partition(4)
	fmt.Println(train.Len(), test.Len(), len(shards), shards[0].Len())
	// Output:
	// 100 20 4 25
}

// EpochSampler sweeps a dataset once per epoch in shuffled minibatches.
func ExampleEpochSampler() {
	s := data.NewEpochSampler(10, 4, 1)
	total := 0
	for b := 0; b < s.BatchesPerEpoch(); b++ {
		total += len(s.Next())
	}
	fmt.Println(s.BatchesPerEpoch(), total)
	// Output:
	// 3 10
}
