package data

import (
	"fmt"
	"math/rand"
)

// EpochSampler yields minibatch index sets that sweep a dataset once per
// epoch in a freshly shuffled order — the "one pass of the input is
// called an epoch" accounting the paper uses throughout its figures.
type EpochSampler struct {
	rng   *rand.Rand
	perm  []int
	pos   int
	batch int
	// Epoch counts completed passes; it increments when the sweep wraps.
	Epoch int
}

// NewEpochSampler returns a sampler over n samples with the given
// minibatch size, shuffled by a dedicated RNG seeded with seed.
func NewEpochSampler(n, batch int, seed int64) *EpochSampler {
	if n <= 0 || batch <= 0 {
		panic(fmt.Sprintf("data: NewEpochSampler(%d, %d): sizes must be positive", n, batch))
	}
	if batch > n {
		batch = n
	}
	s := &EpochSampler{rng: rand.New(rand.NewSource(seed)), perm: rand.New(rand.NewSource(seed)).Perm(n), batch: batch}
	return s
}

// BatchSize returns the minibatch size.
func (s *EpochSampler) BatchSize() int { return s.batch }

// BatchesPerEpoch returns how many Next calls make up one epoch.
func (s *EpochSampler) BatchesPerEpoch() int {
	return (len(s.perm) + s.batch - 1) / s.batch
}

// Next returns the next minibatch's sample indices. The final batch of an
// epoch may be short; the next call starts a new shuffled epoch.
func (s *EpochSampler) Next() []int {
	if s.pos >= len(s.perm) {
		s.rng.Shuffle(len(s.perm), func(i, j int) { s.perm[i], s.perm[j] = s.perm[j], s.perm[i] })
		s.pos = 0
		s.Epoch++
	}
	end := s.pos + s.batch
	if end > len(s.perm) {
		end = len(s.perm)
	}
	out := s.perm[s.pos:end]
	s.pos = end
	return out
}

// Skip advances the sampler past n minibatches without returning them,
// replaying reshuffles exactly as Next would. Checkpoint resume uses it
// to fast-forward a learner's sample stream to the recorded step so a
// restarted run consumes the identical batch sequence a never-
// interrupted run would have.
func (s *EpochSampler) Skip(n int) {
	for i := 0; i < n; i++ {
		s.Next()
	}
}

// UniformSampler yields minibatches drawn uniformly with replacement —
// the i.i.d. sampling the convergence analyses assume. Provided for the
// theory-validation experiments; the figure reproductions use
// EpochSampler to match the paper's epoch accounting.
type UniformSampler struct {
	rng   *rand.Rand
	n     int
	batch int
	buf   []int
}

// NewUniformSampler returns a with-replacement sampler over n samples.
func NewUniformSampler(n, batch int, seed int64) *UniformSampler {
	if n <= 0 || batch <= 0 {
		panic(fmt.Sprintf("data: NewUniformSampler(%d, %d): sizes must be positive", n, batch))
	}
	return &UniformSampler{rng: rand.New(rand.NewSource(seed)), n: n, batch: batch, buf: make([]int, batch)}
}

// Next returns a fresh uniformly sampled index set of the batch size. The
// returned slice is reused by subsequent calls.
func (s *UniformSampler) Next() []int {
	for i := range s.buf {
		s.buf[i] = s.rng.Intn(s.n)
	}
	return s.buf
}
