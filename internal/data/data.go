// Package data provides the two training workloads the paper evaluates
// on, as deterministic synthetic stand-ins (see DESIGN.md §2): an image
// classification set with the tensor shape and class structure of
// CIFAR-10, and a sentence-classification set with the shape of the
// proprietary NLC-F finance dataset (word2vec-style embeddings, 311
// labels). Both are class-conditional pattern-plus-noise generators, so
// difficulty is controlled by a single noise parameter and every
// experiment is reproducible from a seed.
package data

import (
	"fmt"
	"math"
	"math/rand"

	"sasgd/internal/tensor"
)

// Dataset is a fixed collection of labelled samples held as one tensor
// whose leading dimension indexes samples.
type Dataset struct {
	X           *tensor.Tensor // (N, sample...) all samples
	Y           []int          // len N labels
	SampleShape []int          // per-sample shape
	Classes     int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Y) }

// sampleSize returns the element count of one sample.
func (d *Dataset) sampleSize() int {
	n := 1
	for _, s := range d.SampleShape {
		n *= s
	}
	return n
}

// Batch gathers the samples at the given indices into a fresh minibatch
// tensor and label slice.
func (d *Dataset) Batch(indices []int) (*tensor.Tensor, []int) {
	sz := d.sampleSize()
	shape := append([]int{len(indices)}, d.SampleShape...)
	x := tensor.New(shape...)
	y := make([]int, len(indices))
	for bi, idx := range indices {
		if idx < 0 || idx >= d.Len() {
			panic(fmt.Sprintf("data: batch index %d out of range [0,%d)", idx, d.Len()))
		}
		copy(x.Data[bi*sz:(bi+1)*sz], d.X.Data[idx*sz:(idx+1)*sz])
		y[bi] = d.Y[idx]
	}
	return x, y
}

// Slice returns a view-free copy of samples [lo, hi), used to partition
// training data among learners.
func (d *Dataset) Slice(lo, hi int) *Dataset {
	if lo < 0 || hi > d.Len() || lo > hi {
		panic(fmt.Sprintf("data: Slice(%d, %d) out of range for %d samples", lo, hi, d.Len()))
	}
	idx := make([]int, hi-lo)
	for i := range idx {
		idx[i] = lo + i
	}
	x, y := d.Batch(idx)
	return &Dataset{X: x, Y: y, SampleShape: d.SampleShape, Classes: d.Classes}
}

// Partition splits the dataset into p nearly equal shards (the standard
// data-parallel assignment: learner i trains on shard i).
func (d *Dataset) Partition(p int) []*Dataset {
	if p <= 0 {
		panic(fmt.Sprintf("data: Partition(%d): shard count must be positive", p))
	}
	shards := make([]*Dataset, p)
	n := d.Len()
	for i := 0; i < p; i++ {
		lo := i * n / p
		hi := (i + 1) * n / p
		shards[i] = d.Slice(lo, hi)
	}
	return shards
}

// ImageConfig parameterizes the synthetic CIFAR-10 stand-in.
type ImageConfig struct {
	TrainN   int     // paper: 50000
	TestN    int     // paper: 10000
	Size     int     // square image side (paper: 32)
	Channels int     // paper: 3
	Classes  int     // paper: 10
	Noise    float64 // additive Gaussian noise std; controls difficulty
	Seed     int64
}

// SmallImageConfig returns the reduced-scale image workload used by the
// fast experiment suite: the same class structure as CIFAR-10 with sample
// counts and resolution shrunk so distributed runs finish in seconds.
func SmallImageConfig() ImageConfig {
	return ImageConfig{TrainN: 8192, TestN: 1024, Size: 8, Channels: 3, Classes: 10, Noise: 2.2, Seed: 1}
}

// PaperImageConfig records the paper-scale shape of CIFAR-10.
func PaperImageConfig() ImageConfig {
	return ImageConfig{TrainN: 50000, TestN: 10000, Size: 32, Channels: 3, Classes: 10, Noise: 1.0, Seed: 1}
}

// GenImages generates a train/test pair of synthetic image datasets.
// Each class has a smooth per-class spatial pattern (random low-frequency
// sinusoid mixtures); a sample is its class pattern plus i.i.d. Gaussian
// noise. The Bayes-optimal classifier is well above chance but the noise
// keeps learning gradual, which is what the convergence figures need.
func GenImages(cfg ImageConfig) (train, test *Dataset) {
	if cfg.Classes <= 1 || cfg.Size <= 0 || cfg.Channels <= 0 {
		panic(fmt.Sprintf("data: invalid ImageConfig %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	protos := make([]*tensor.Tensor, cfg.Classes)
	for k := range protos {
		protos[k] = imageProto(rng, cfg.Channels, cfg.Size)
	}
	gen := func(n int, rng *rand.Rand) *Dataset {
		d := &Dataset{
			X:           tensor.New(n, cfg.Channels, cfg.Size, cfg.Size),
			Y:           make([]int, n),
			SampleShape: []int{cfg.Channels, cfg.Size, cfg.Size},
			Classes:     cfg.Classes,
		}
		sz := cfg.Channels * cfg.Size * cfg.Size
		for i := 0; i < n; i++ {
			k := rng.Intn(cfg.Classes)
			d.Y[i] = k
			dst := d.X.Data[i*sz : (i+1)*sz]
			for j, v := range protos[k].Data {
				dst[j] = v + rng.NormFloat64()*cfg.Noise
			}
		}
		return d
	}
	train = gen(cfg.TrainN, rand.New(rand.NewSource(cfg.Seed+1)))
	test = gen(cfg.TestN, rand.New(rand.NewSource(cfg.Seed+2)))
	return train, test
}

// imageProto builds one class's base pattern: a sum of three random
// low-frequency plane waves per channel, normalized to unit variance.
func imageProto(rng *rand.Rand, c, size int) *tensor.Tensor {
	t := tensor.New(c, size, size)
	for ch := 0; ch < c; ch++ {
		type wave struct{ fx, fy, ph, amp float64 }
		waves := make([]wave, 3)
		for i := range waves {
			waves[i] = wave{
				fx:  (rng.Float64()*2 - 1) * 2,
				fy:  (rng.Float64()*2 - 1) * 2,
				ph:  rng.Float64() * 2 * math.Pi,
				amp: 0.5 + rng.Float64(),
			}
		}
		for y := 0; y < size; y++ {
			for x := 0; x < size; x++ {
				v := 0.0
				for _, w := range waves {
					v += w.amp * math.Sin(2*math.Pi*(w.fx*float64(x)+w.fy*float64(y))/float64(size)+w.ph)
				}
				t.Set(v, ch, y, x)
			}
		}
	}
	// normalize to zero mean, unit variance per prototype
	mean := t.Mean()
	variance := 0.0
	for _, v := range t.Data {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(t.Size())
	inv := 1.0
	if variance > 0 {
		inv = 1 / math.Sqrt(variance)
	}
	for i := range t.Data {
		t.Data[i] = (t.Data[i] - mean) * inv
	}
	return t
}

// TextConfig parameterizes the synthetic NLC-F stand-in.
type TextConfig struct {
	TrainN   int     // paper: 2500
	TestN    int     // held-out split (the paper reports test accuracy)
	SeqLen   int     // words per sentence
	EmbedDim int     // word2vec width (paper: 100)
	Classes  int     // paper: 311
	Noise    float64 // per-dimension Gaussian noise std on training samples
	// TestNoise is the noise std on test samples (0 selects Noise).
	// Setting it above Noise produces the regime the paper reports for
	// NLC-F: training accuracy approaches 100% while test accuracy is
	// capped well below (≈60%), because test sentences are harder than
	// the small training set.
	TestNoise float64
	Seed      int64
}

// SmallTextConfig returns the reduced-scale text workload, calibrated so
// a well-trained model reaches ≈100% train / ≈60% test accuracy, the
// ceilings the paper reports for NLC-F.
func SmallTextConfig() TextConfig {
	return TextConfig{TrainN: 2500, TestN: 500, SeqLen: 3, EmbedDim: 16, Classes: 12, Noise: 1.0, TestNoise: 2.4, Seed: 2}
}

// PaperTextConfig records the paper-scale shape of NLC-F.
func PaperTextConfig() TextConfig {
	return TextConfig{TrainN: 2500, TestN: 500, SeqLen: 3, EmbedDim: 100, Classes: 311, Noise: 1.0, TestNoise: 2.7, Seed: 2}
}

// GenText generates a train/test pair of synthetic sentence datasets.
// Each class has a prototype sequence of embedding vectors; a sample is
// the prototype with additive noise. The paper reports ≈60% ceiling test
// accuracy on NLC-F; the default noise level reproduces a similar
// well-below-100% ceiling.
func GenText(cfg TextConfig) (train, test *Dataset) {
	if cfg.Classes <= 1 || cfg.SeqLen <= 0 || cfg.EmbedDim <= 0 {
		panic(fmt.Sprintf("data: invalid TextConfig %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	protos := make([][]float64, cfg.Classes)
	sz := cfg.SeqLen * cfg.EmbedDim
	for k := range protos {
		p := make([]float64, sz)
		for i := range p {
			p[i] = rng.NormFloat64()
		}
		protos[k] = p
	}
	gen := func(n int, noise float64, rng *rand.Rand) *Dataset {
		d := &Dataset{
			X:           tensor.New(n, cfg.SeqLen, cfg.EmbedDim),
			Y:           make([]int, n),
			SampleShape: []int{cfg.SeqLen, cfg.EmbedDim},
			Classes:     cfg.Classes,
		}
		for i := 0; i < n; i++ {
			k := rng.Intn(cfg.Classes)
			d.Y[i] = k
			dst := d.X.Data[i*sz : (i+1)*sz]
			for j, v := range protos[k] {
				dst[j] = v + rng.NormFloat64()*noise
			}
		}
		return d
	}
	testNoise := cfg.TestNoise
	if testNoise == 0 {
		testNoise = cfg.Noise
	}
	train = gen(cfg.TrainN, cfg.Noise, rand.New(rand.NewSource(cfg.Seed+1)))
	test = gen(cfg.TestN, testNoise, rand.New(rand.NewSource(cfg.Seed+2)))
	return train, test
}
