package data

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenImagesShapes(t *testing.T) {
	cfg := ImageConfig{TrainN: 100, TestN: 40, Size: 8, Channels: 3, Classes: 10, Noise: 1, Seed: 1}
	train, test := GenImages(cfg)
	if train.Len() != 100 || test.Len() != 40 {
		t.Fatalf("lengths %d/%d", train.Len(), test.Len())
	}
	wantShape := []int{3, 8, 8}
	for i, d := range wantShape {
		if train.SampleShape[i] != d {
			t.Fatalf("sample shape %v", train.SampleShape)
		}
	}
	if train.X.Size() != 100*3*8*8 {
		t.Errorf("train tensor size %d", train.X.Size())
	}
	for _, y := range train.Y {
		if y < 0 || y >= 10 {
			t.Fatalf("label %d out of range", y)
		}
	}
}

func TestGenImagesDeterministic(t *testing.T) {
	cfg := SmallImageConfig()
	cfg.TrainN, cfg.TestN = 50, 20
	a, _ := GenImages(cfg)
	b, _ := GenImages(cfg)
	for i := range a.X.Data {
		if a.X.Data[i] != b.X.Data[i] {
			t.Fatal("same seed produced different data")
		}
	}
	cfg.Seed = 99
	c, _ := GenImages(cfg)
	same := true
	for i := range a.X.Data {
		if a.X.Data[i] != c.X.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestGenImagesClassesDiffer(t *testing.T) {
	// Samples of different classes must be farther apart (on average)
	// than samples of the same class: the signal the classifiers learn.
	cfg := ImageConfig{TrainN: 400, TestN: 10, Size: 8, Channels: 3, Classes: 4, Noise: 0.5, Seed: 3}
	train, _ := GenImages(cfg)
	sz := 3 * 8 * 8
	dist := func(i, j int) float64 {
		s := 0.0
		for k := 0; k < sz; k++ {
			d := train.X.Data[i*sz+k] - train.X.Data[j*sz+k]
			s += d * d
		}
		return s
	}
	var same, diff, nSame, nDiff float64
	for i := 0; i < 100; i++ {
		for j := i + 1; j < 100; j++ {
			if train.Y[i] == train.Y[j] {
				same += dist(i, j)
				nSame++
			} else {
				diff += dist(i, j)
				nDiff++
			}
		}
	}
	if nSame == 0 || nDiff == 0 {
		t.Skip("degenerate label draw")
	}
	if diff/nDiff <= same/nSame {
		t.Errorf("between-class distance %.3f not above within-class %.3f", diff/nDiff, same/nSame)
	}
}

func TestGenTextShapesAndNoiseSplit(t *testing.T) {
	cfg := TextConfig{TrainN: 60, TestN: 60, SeqLen: 3, EmbedDim: 5, Classes: 4, Noise: 0.1, TestNoise: 3.0, Seed: 5}
	train, test := GenText(cfg)
	if train.Len() != 60 || test.Len() != 60 {
		t.Fatalf("lengths %d/%d", train.Len(), test.Len())
	}
	// Test samples must be substantially noisier: compare mean squared
	// deviation magnitudes (train ≈ proto ± 0.1, test ≈ proto ± 3).
	varOf := func(d *Dataset) float64 {
		s := 0.0
		for _, v := range d.X.Data {
			s += v * v
		}
		return s / float64(len(d.X.Data))
	}
	if varOf(test) < varOf(train)*2 {
		t.Errorf("test noise split not visible: train var %.2f, test var %.2f", varOf(train), varOf(test))
	}
}

func TestGenTextDefaultTestNoise(t *testing.T) {
	cfg := TextConfig{TrainN: 30, TestN: 30, SeqLen: 2, EmbedDim: 4, Classes: 3, Noise: 1, Seed: 6}
	train, test := GenText(cfg)
	varOf := func(d *Dataset) float64 {
		s := 0.0
		for _, v := range d.X.Data {
			s += v * v
		}
		return s / float64(len(d.X.Data))
	}
	if r := varOf(test) / varOf(train); r < 0.6 || r > 1.6 {
		t.Errorf("TestNoise=0 should match train noise; variance ratio %.2f", r)
	}
}

func TestBatchGathers(t *testing.T) {
	cfg := ImageConfig{TrainN: 10, TestN: 2, Size: 2, Channels: 1, Classes: 2, Noise: 0.1, Seed: 7}
	train, _ := GenImages(cfg)
	x, y := train.Batch([]int{3, 7})
	if x.Dim(0) != 2 || len(y) != 2 {
		t.Fatalf("batch shape %v, labels %v", x.Shape(), y)
	}
	sz := 4
	for k := 0; k < sz; k++ {
		if x.Data[k] != train.X.Data[3*sz+k] {
			t.Fatal("batch row 0 does not match sample 3")
		}
		if x.Data[sz+k] != train.X.Data[7*sz+k] {
			t.Fatal("batch row 1 does not match sample 7")
		}
	}
	if y[0] != train.Y[3] || y[1] != train.Y[7] {
		t.Error("batch labels wrong")
	}
}

func TestBatchOutOfRangePanics(t *testing.T) {
	cfg := ImageConfig{TrainN: 4, TestN: 2, Size: 2, Channels: 1, Classes: 2, Noise: 0.1, Seed: 8}
	train, _ := GenImages(cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range batch index did not panic")
		}
	}()
	train.Batch([]int{4})
}

func TestPartitionCoversAll(t *testing.T) {
	cfg := ImageConfig{TrainN: 103, TestN: 2, Size: 2, Channels: 1, Classes: 3, Noise: 0.1, Seed: 9}
	train, _ := GenImages(cfg)
	for _, p := range []int{1, 2, 3, 8, 16} {
		shards := train.Partition(p)
		total := 0
		for _, s := range shards {
			total += s.Len()
		}
		if total != train.Len() {
			t.Errorf("p=%d: shards cover %d of %d samples", p, total, train.Len())
		}
		// Shard sizes within 1 of each other.
		min, max := shards[0].Len(), shards[0].Len()
		for _, s := range shards {
			if s.Len() < min {
				min = s.Len()
			}
			if s.Len() > max {
				max = s.Len()
			}
		}
		if max-min > 1 {
			t.Errorf("p=%d: unbalanced shards (%d..%d)", p, min, max)
		}
	}
}

func TestEpochSamplerCoversEachEpoch(t *testing.T) {
	s := NewEpochSampler(10, 3, 1)
	if s.BatchesPerEpoch() != 4 {
		t.Fatalf("BatchesPerEpoch = %d, want 4", s.BatchesPerEpoch())
	}
	for epoch := 0; epoch < 3; epoch++ {
		seen := map[int]bool{}
		for b := 0; b < 4; b++ {
			for _, i := range s.Next() {
				if seen[i] {
					t.Fatalf("epoch %d: index %d repeated", epoch, i)
				}
				seen[i] = true
			}
		}
		if len(seen) != 10 {
			t.Fatalf("epoch %d covered %d of 10 samples", epoch, len(seen))
		}
	}
	if s.Epoch != 2 {
		t.Errorf("Epoch counter = %d, want 2 completed wraps", s.Epoch)
	}
}

func TestEpochSamplerShufflesBetweenEpochs(t *testing.T) {
	s := NewEpochSampler(64, 64, 42)
	first := append([]int(nil), s.Next()...)
	second := append([]int(nil), s.Next()...)
	same := true
	for i := range first {
		if first[i] != second[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("consecutive epochs used identical order")
	}
}

func TestEpochSamplerBatchClamp(t *testing.T) {
	s := NewEpochSampler(5, 100, 1)
	if got := len(s.Next()); got != 5 {
		t.Errorf("oversized batch returned %d indices, want 5", got)
	}
}

func TestUniformSampler(t *testing.T) {
	s := NewUniformSampler(20, 7, 3)
	counts := make([]int, 20)
	for i := 0; i < 400; i++ {
		for _, idx := range s.Next() {
			if idx < 0 || idx >= 20 {
				t.Fatalf("index %d out of range", idx)
			}
			counts[idx]++
		}
	}
	// Roughly uniform: every index hit at least once in 2800 draws.
	for i, c := range counts {
		if c == 0 {
			t.Errorf("index %d never drawn", i)
		}
	}
}

// Property: Slice(a,b) preserves labels and sample data.
func TestSliceProperty(t *testing.T) {
	cfg := ImageConfig{TrainN: 50, TestN: 2, Size: 2, Channels: 1, Classes: 5, Noise: 0.3, Seed: 11}
	train, _ := GenImages(cfg)
	f := func(seed int64) bool {
		lo := int(seed%25 + 25)
		if lo < 0 {
			lo = -lo % 25
		}
		hi := lo + 10
		if hi > train.Len() {
			return true
		}
		s := train.Slice(lo, hi)
		if s.Len() != hi-lo {
			return false
		}
		sz := 4
		for i := 0; i < s.Len(); i++ {
			if s.Y[i] != train.Y[lo+i] {
				return false
			}
			for k := 0; k < sz; k++ {
				if math.Abs(s.X.Data[i*sz+k]-train.X.Data[(lo+i)*sz+k]) > 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestInvalidConfigsPanic(t *testing.T) {
	for name, fn := range map[string]func(){
		"image classes": func() { GenImages(ImageConfig{TrainN: 1, TestN: 1, Size: 2, Channels: 1, Classes: 1, Seed: 1}) },
		"text seqlen":   func() { GenText(TextConfig{TrainN: 1, TestN: 1, SeqLen: 0, EmbedDim: 2, Classes: 2, Seed: 1}) },
		"partition":     func() { (&Dataset{}).Partition(0) },
		"sampler":       func() { NewEpochSampler(0, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
