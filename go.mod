module sasgd

go 1.22
