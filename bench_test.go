// Package sasgd's top-level benchmark harness: one benchmark per table
// and figure of the paper (each wraps the corresponding experiment
// driver at a reduced budget and reports the figure's headline quantity
// as a custom metric), plus the ablation benchmarks DESIGN.md §5 calls
// out. Regenerate everything with:
//
//	go test -bench=. -benchmem .
//
// The full-budget reproductions (paper-default epochs and sweeps) are
// produced by cmd/experiments; these benchmarks are sized to keep a full
// -bench=. pass in the low minutes.
package sasgd

import (
	"flag"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"sasgd/internal/comm"
	"sasgd/internal/core"
	"sasgd/internal/experiments"
	"sasgd/internal/model"
	"sasgd/internal/nn"
	"sasgd/internal/parallel"
	"sasgd/internal/tensor"
)

// benchWorkers selects the worker counts the kernel sweep benchmarks run
// at, e.g. go test -bench Kernel . -workers 1,2,4,8
// (the package path must precede -workers: go test stops reading
// package arguments at the first flag it does not recognise itself).
var benchWorkers = flag.String("workers", "1,2,4,8", "comma-separated worker counts for kernel benchmark sweeps")

func workerCounts(b *testing.B) []int {
	b.Helper()
	var ws []int
	for _, f := range strings.Split(*benchWorkers, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			b.Fatalf("bad -workers entry %q", f)
		}
		ws = append(ws, w)
	}
	return ws
}

// BenchmarkTableICIFARNet measures one training step (forward + loss +
// backward) of the exact Table-I CIFAR-10 network at minibatch size 1.
func BenchmarkTableICIFARNet(b *testing.B) {
	net := model.NewCIFARNet(rand.New(rand.NewSource(1)), model.PaperCIFARConfig())
	x := tensor.New(1, 3, 32, 32)
	x.FillRandn(rand.New(rand.NewSource(2)), 0, 1)
	b.ReportMetric(float64(net.NumParams()), "params")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Step(x, []int{0})
	}
}

// BenchmarkTableIINLCFNet measures one training step of the exact
// Table-II NLC-F network at minibatch size 1 (the paper's M for NLC-F).
func BenchmarkTableIINLCFNet(b *testing.B) {
	net := model.NewNLCFNet(rand.New(rand.NewSource(1)), model.PaperNLCFConfig())
	x := tensor.New(1, 3, 100)
	x.FillRandn(rand.New(rand.NewSource(2)), 0, 1)
	b.ReportMetric(float64(net.NumParams()), "params")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Step(x, []int{0})
	}
}

// BenchmarkTheorem1Gap evaluates the Theorem 1 analysis (optimal-c cubic
// plus guarantee gap) across the driver's (p, α) grid.
func BenchmarkTheorem1Gap(b *testing.B) {
	var rows []experiments.Theorem1Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Theorem1(experiments.Opt{})
	}
	if len(rows) > 0 {
		b.ReportMetric(rows[1].Gap, "gap@p32,a16")
	}
}

// BenchmarkFig1EpochBreakdown regenerates Figure 1 (Downpour epoch-time
// breakdown) at p ∈ {1, 8} and reports the CIFAR-10 p=8 communication
// share, the figure's headline number (≈30%).
func BenchmarkFig1EpochBreakdown(b *testing.B) {
	var rows []experiments.Fig1Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig1(experiments.Opt{Ps: []int{1, 8}})
	}
	for _, r := range rows {
		if r.Workload == "CIFAR-10" && r.P == 8 {
			b.ReportMetric(r.CommPct, "comm%@cifar,p8")
		}
		if r.Workload == "NLC-F" && r.P == 8 {
			b.ReportMetric(r.CommPct, "comm%@nlcf,p8")
		}
	}
}

// BenchmarkFig2DownpourLR01 regenerates a reduced Figure 2 (Downpour at
// the practical rate) and reports the p=16 accuracy deficit versus p=1.
func BenchmarkFig2DownpourLR01(b *testing.B) {
	var r *experiments.ConvergenceResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig2(experiments.Opt{Epochs: 6, Ps: []int{1, 16}})
	}
	b.ReportMetric(r.Runs[0].Curve.AUC()-r.Runs[1].Curve.AUC(), "auc-gap-p1-p16")
}

// BenchmarkFig3DownpourLR0005 regenerates a reduced Figure 3 (the
// theory-prescribed small rate) and reports how far the small-rate run
// lands below the practical-rate ceiling.
func BenchmarkFig3DownpourLR0005(b *testing.B) {
	var r *experiments.ConvergenceResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig3(experiments.Opt{Epochs: 6, Ps: []int{1, 16}})
	}
	b.ReportMetric(r.Runs[1].FinalTest-r.Runs[0].FinalTest, "p16-minus-p1")
}

// BenchmarkFig4EpochTimeCIFAR regenerates Figure 4 and reports the
// T=1 / T=50 epoch-time ratio at p=8 (paper: ≈1.3).
func BenchmarkFig4EpochTimeCIFAR(b *testing.B) {
	var r *experiments.EpochTimeResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig4(experiments.Opt{Ps: []int{1, 8}})
	}
	b.ReportMetric(r.EpochSecsAt(1, 8)/r.EpochSecsAt(50, 8), "T1/T50@p8")
	b.ReportMetric(r.SpeedupAt(50, 8), "speedup@T50,p8")
}

// BenchmarkFig5EpochTimeNLCF regenerates Figure 5 and reports the same
// ratio for NLC-F (paper: ≈9.7).
func BenchmarkFig5EpochTimeNLCF(b *testing.B) {
	var r *experiments.EpochTimeResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig5(experiments.Opt{Ps: []int{1, 8}})
	}
	b.ReportMetric(r.EpochSecsAt(1, 8)/r.EpochSecsAt(50, 8), "T1/T50@p8")
	b.ReportMetric(r.SpeedupAt(50, 8), "speedup@T50,p8")
}

// BenchmarkFig6ThreeWayEpochTime regenerates Figure 6 and reports the
// NLC-F T=1 training-time reduction of SASGD over Downpour (paper: "up
// to 50%").
func BenchmarkFig6ThreeWayEpochTime(b *testing.B) {
	var rows []experiments.Fig6Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig6(experiments.Opt{})
	}
	var down, sasgd float64
	for _, r := range rows {
		if r.Workload == "NLC-F" && r.T == 1 {
			switch r.Algo {
			case core.AlgoDownpour:
				down = r.EpochSecs
			case core.AlgoSASGD:
				sasgd = r.EpochSecs
			}
		}
	}
	if down > 0 {
		b.ReportMetric(100*(1-sasgd/down), "time-reduction%")
	}
}

// BenchmarkFig7SASGDTImpactCIFAR regenerates a reduced Figure 7 and
// reports the T=1 vs T=50 accuracy gap at p=16 (paper: ≈3.2% after the
// full budget).
func BenchmarkFig7SASGDTImpactCIFAR(b *testing.B) {
	var panels []experiments.TImpactResult
	for i := 0; i < b.N; i++ {
		panels = experiments.Fig7(experiments.Opt{Epochs: 8, Ps: []int{16}, Ts: []int{1, 50}})
	}
	p := panels[0]
	b.ReportMetric(100*(p.FinalTestAt(1)-p.FinalTestAt(50)), "acc-gap-pct@p16")
}

// BenchmarkFig8SASGDTImpactNLCF regenerates a reduced Figure 8 (paper:
// the degradation with T is much weaker on NLC-F).
func BenchmarkFig8SASGDTImpactNLCF(b *testing.B) {
	var panels []experiments.TImpactResult
	for i := 0; i < b.N; i++ {
		panels = experiments.Fig8(experiments.Opt{Epochs: 10, Ps: []int{16}, Ts: []int{1, 50}})
	}
	p := panels[0]
	b.ReportMetric(100*(p.FinalTestAt(1)-p.FinalTestAt(50)), "acc-gap-pct@p16")
}

// BenchmarkFig9ThreeWayCIFAR regenerates a reduced Figure 9 and reports
// SASGD's final-test margin over Downpour and EAMSGD at p=8.
func BenchmarkFig9ThreeWayCIFAR(b *testing.B) {
	var panels []experiments.ThreeWayResult
	for i := 0; i < b.N; i++ {
		panels = experiments.Fig9(experiments.Opt{Epochs: 8, Ps: []int{8}})
	}
	runs := panels[0].Runs
	b.ReportMetric(100*(runs[core.AlgoSASGD].FinalTest-runs[core.AlgoDownpour].FinalTest), "sasgd-minus-downpour-pct")
	b.ReportMetric(100*(runs[core.AlgoSASGD].FinalTest-runs[core.AlgoEAMSGD].FinalTest), "sasgd-minus-eamsgd-pct")
}

// BenchmarkFig10ThreeWayNLCF regenerates a reduced Figure 10 with the
// same margins on the NLC-F workload at p=16.
func BenchmarkFig10ThreeWayNLCF(b *testing.B) {
	var panels []experiments.ThreeWayResult
	for i := 0; i < b.N; i++ {
		panels = experiments.Fig10(experiments.Opt{Epochs: 12, Ps: []int{16}})
	}
	runs := panels[0].Runs
	b.ReportMetric(100*(runs[core.AlgoSASGD].FinalTest-runs[core.AlgoDownpour].FinalTest), "sasgd-minus-downpour-pct")
	b.ReportMetric(100*runs[core.AlgoSASGD].FinalTest, "sasgd-test-pct")
}

// --- Ablation benchmarks (DESIGN.md §5) ---

func ablationProblem() *core.Problem {
	w := experiments.ImageWorkload()
	return w.Problem
}

// BenchmarkAblationAllreduceAlgo compares SASGD wall time with the
// binomial-tree versus the ring allreduce (the collectives move the same
// data; the tree has fewer, larger messages).
func BenchmarkAblationAllreduceAlgo(b *testing.B) {
	prob := ablationProblem()
	for _, algo := range []core.AllreduceAlgo{core.AllreduceTree, core.AllreduceRing} {
		b.Run(string(algo), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Train(core.Config{
					Algo: core.AlgoSASGD, Learners: 8, Interval: 5, Gamma: 0.1,
					Batch: 16, Epochs: 2, Seed: 1, EvalEvery: 2, Allreduce: algo,
				}, prob)
			}
		})
	}
}

// BenchmarkAblationGammaP compares SASGD's model-averaging default
// γp = γ/p against γp = γ (applying the full aggregated gradient),
// reporting the final test accuracy of each.
func BenchmarkAblationGammaP(b *testing.B) {
	prob := ablationProblem()
	for _, cfg := range []struct {
		name   string
		gammaP float64
	}{{"gammaOverP", 0}, {"gamma", 0.1}} {
		b.Run(cfg.name, func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				res = core.Train(core.Config{
					Algo: core.AlgoSASGD, Learners: 8, Interval: 5, Gamma: 0.1, GammaP: cfg.gammaP,
					Batch: 16, Epochs: 6, Seed: 1, EvalEvery: 6,
				}, prob)
			}
			b.ReportMetric(100*res.FinalTest, "test-pct")
		})
	}
}

// BenchmarkAblationServerShards compares Downpour's simulated epoch time
// and accuracy with a single-shard versus an 8-shard parameter server.
func BenchmarkAblationServerShards(b *testing.B) {
	w := experiments.ImageWorkload()
	for _, shards := range []int{1, 8} {
		b.Run(map[int]string{1: "single", 8: "sharded"}[shards], func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				res = core.Train(core.Config{
					Algo: core.AlgoDownpour, Learners: 8, Interval: 5, Gamma: 0.1,
					Batch: 16, Epochs: 2, Seed: 1, EvalEvery: 2, Shards: shards,
					Sim: w.SimConfig(8), FlopsPerSample: w.PaperCost.TrainFlopsPerSample,
				}, w.Problem)
			}
			b.ReportMetric(res.EpochTime(), "sim-epoch-s")
		})
	}
}

// BenchmarkAblationPayload compares the per-aggregation collective
// payload cost directly: allreducing the full Table-I gradient vector
// across 8 in-process learners, tree vs ring.
func BenchmarkAblationPayload(b *testing.B) {
	m := 506378
	for _, name := range []string{"tree", "ring"} {
		b.Run(name, func(b *testing.B) {
			prob := ablationProblem()
			_ = prob
			bufs := make([][]float64, 8)
			for r := range bufs {
				bufs[r] = make([]float64, m)
			}
			b.SetBytes(int64(m * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runAllreduce(name, bufs)
			}
		})
	}
}

func runAllreduce(name string, bufs [][]float64) {
	p := len(bufs)
	g := comm.NewGroup(p)
	done := make(chan struct{}, p)
	for r := 0; r < p; r++ {
		go func(r int) {
			if name == "tree" {
				g.AllreduceTree(r, bufs[r])
			} else {
				g.AllreduceRing(r, bufs[r])
			}
			done <- struct{}{}
		}(r)
	}
	for i := 0; i < p; i++ {
		<-done
	}
}

// BenchmarkKernelMatMul measures the core GEMM kernel the networks are
// built on, swept across matrix sizes and worker-pool widths;
// scripts/bench_kernels.sh records the results in BENCH_KERNELS.json so
// the perf trajectory is tracked across PRs.
func BenchmarkKernelMatMul(b *testing.B) {
	for _, n := range []int{128, 256, 512} {
		rng := rand.New(rand.NewSource(1))
		a, c := tensor.New(n, n), tensor.New(n, n)
		a.FillRandn(rng, 0, 1)
		bb := tensor.New(n, n)
		bb.FillRandn(rng, 0, 1)
		for _, w := range workerCounts(b) {
			b.Run(fmt.Sprintf("n%d/w%d", n, w), func(b *testing.B) {
				defer parallel.SetWorkers(parallel.SetWorkers(w))
				b.SetBytes(int64(2 * n * n * 8)) // touched bytes per op, coarse
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tensor.MatMul(c, a, bb)
				}
			})
		}
	}
}

// BenchmarkKernelConvForward measures the Table-I first conv layer
// (3→64, 5×5 on 32×32) via im2col, at minibatch 1 (the paper's CIFAR M
// per learner) and a batched minibatch, across worker-pool widths.
func BenchmarkKernelConvForward(b *testing.B) {
	for _, batch := range []int{1, 16} {
		rng := rand.New(rand.NewSource(1))
		conv := nn.NewConv2D(rng, 3, 64, 5, 5)
		x := tensor.New(batch, 3, 32, 32)
		x.FillRandn(rng, 0, 1)
		for _, w := range workerCounts(b) {
			b.Run(fmt.Sprintf("b%d/w%d", batch, w), func(b *testing.B) {
				defer parallel.SetWorkers(parallel.SetWorkers(w))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					conv.Forward(x, true)
				}
			})
		}
	}
}

// BenchmarkAblationCompression compares SASGD's dense aggregation against
// top-k sparsified aggregation with error feedback at two densities,
// reporting simulated epoch time (the communication savings at paper
// scale) and the accuracy cost.
func BenchmarkAblationCompression(b *testing.B) {
	w := experiments.ImageWorkload()
	for _, cfg := range []struct {
		name string
		topk float64
	}{{"dense", 0}, {"top10pct", 0.10}, {"top1pct", 0.01}} {
		b.Run(cfg.name, func(b *testing.B) {
			var acc *core.Result
			for i := 0; i < b.N; i++ {
				timing := core.Train(core.Config{
					Algo: core.AlgoSASGD, Learners: 8, Interval: 1, Gamma: w.Gamma,
					Batch: 64, Epochs: 2, Seed: 1, EvalEvery: 2, CompressTopK: cfg.topk,
					Sim: w.SimConfig(8), FlopsPerSample: w.PaperCost.TrainFlopsPerSample,
				}, w.Problem)
				b.ReportMetric(timing.EpochTime(), "sim-epoch-s")
				acc = core.Train(core.Config{
					Algo: core.AlgoSASGD, Learners: 8, Interval: 5, Gamma: w.Gamma,
					Batch: w.Batch, Epochs: 6, Seed: 1, EvalEvery: 6, CompressTopK: cfg.topk,
				}, w.Problem)
			}
			b.ReportMetric(100*acc.FinalTest, "test-pct")
		})
	}
}
