// Theory walkthrough: the paper's convergence analysis, evaluated
// numerically. Reproduces the Theorem 1 argument (why ASGD's practical
// speedup is sublinear), the Figure 3 learning-rate prescription, and
// the Theorem 4 monotonicity of SASGD's sample complexity in T.
//
//	go run ./examples/theory
package main

import (
	"fmt"

	"sasgd/internal/metrics"
	"sasgd/internal/theory"
)

func main() {
	// Problem constants in the spirit of the paper's CIFAR-10 estimates
	// (the paper bounds Df by f(x₁) and estimates L and σ² empirically).
	c := theory.Constants{Df: 10, L: 2, Sigma2: 4, M: 64}

	fmt.Println("1. Theorem 1: the optimal ASGD guarantee for p learners vs 1 learner")
	fmt.Println("   (the gap ≈ p/α is why practical ASGD speedup is sublinear)")
	tab := metrics.Table{Header: []string{"p", "alpha", "optimal c (p)", "guarantee gap", "p/alpha"}}
	for _, pa := range []struct {
		p     int
		alpha float64
	}{{16, 16}, {32, 16}, {64, 16}, {64, 32}} {
		tab.AddRow(
			fmt.Sprint(pa.p), fmt.Sprint(pa.alpha),
			fmt.Sprintf("%.3f", theory.OptimalC(pa.p, pa.alpha)),
			fmt.Sprintf("%.2f", theory.GapFactor(pa.p, pa.alpha)),
			fmt.Sprintf("%.2f", float64(pa.p)/pa.alpha),
		)
	}
	fmt.Print(tab.String())

	fmt.Println("\n2. Figure 3's learning rate: what the ASGD analysis prescribes")
	k := theory.KForAlpha(c, 16)
	lr := theory.TheoryLearningRate(c, k)
	fmt.Printf("   with K = %d updates: γ_theory = %.4f — far below the practical 0.1,\n", k, lr)
	fmt.Printf("   which is why Figure 3 converges linearly but to a worse optimum.\n")

	fmt.Println("\n3. Theorem 2 / Theorem 4: SASGD's guarantee as T grows (fixed S)")
	tab2 := metrics.Table{Header: []string{"T", "best Theorem-2 bound", "Corollary-3 K threshold"}}
	const S = 1e7
	for _, T := range []int{1, 5, 25, 50, 200} {
		tab2.AddRow(
			fmt.Sprint(T),
			fmt.Sprintf("%.5f", theory.BestSASGDBound(c, 8, T, S)),
			fmt.Sprintf("%.0f", theory.CorollaryKThreshold(c, 8, T)),
		)
	}
	fmt.Print(tab2.String())
	fmt.Println("\n   The bound worsens monotonically with T: amortizing communication")
	fmt.Println("   costs samples, so the practitioner must balance the two — the")
	fmt.Println("   core design argument for SASGD's explicit interval parameter.")
}
