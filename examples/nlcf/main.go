// NLC-F scenario: the paper's headline comparison on its second
// workload — Downpour vs EAMSGD vs SASGD at a large aggregation interval
// (T = 50) as the learner count grows. The asynchronous baselines lose
// accuracy as staleness grows with p; SASGD's staleness is capped at T
// and it holds the sequential ceiling.
//
//	go run ./examples/nlcf
package main

import (
	"fmt"

	"sasgd/internal/core"
	"sasgd/internal/experiments"
	"sasgd/internal/metrics"
)

func main() {
	w := experiments.TextWorkload()
	const epochs = 20

	fmt.Printf("Downpour vs EAMSGD vs SASGD on %s (T=50, %d epochs, M=%d, γ=%g)\n\n",
		w.Name, epochs, w.Batch, w.Gamma)

	tab := metrics.Table{Header: []string{"p", "algo", "train acc", "test acc", "staleness(mean/max)"}}
	for _, p := range []int{2, 8, 16} {
		for _, algo := range []core.Algorithm{core.AlgoDownpour, core.AlgoEAMSGD, core.AlgoSASGD} {
			res := core.Train(core.Config{
				Algo: algo, Learners: p, Interval: 50,
				Gamma: w.Gamma, Batch: w.Batch, Epochs: epochs, Seed: 1, EvalEvery: epochs,
			}, w.Problem)
			tab.AddRow(
				fmt.Sprint(p), string(algo),
				metrics.Pct(res.FinalTrain), metrics.Pct(res.FinalTest),
				fmt.Sprintf("%.1f/%d", res.StalenessMean, res.StalenessMax),
			)
		}
	}
	fmt.Print(tab.String())
	fmt.Println("\nSASGD's explicit staleness bound (T) is what keeps it at the")
	fmt.Println("ceiling while the parameter-server algorithms degrade with p.")
}
