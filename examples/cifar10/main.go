// CIFAR-10 scenario: the trade-off the paper's Section III-B analyzes —
// larger aggregation intervals T amortize communication but increase
// sample complexity. This example trains SASGD at several T values on
// the image workload, reports both the simulated epoch time on the
// paper's platform and the accuracy after a fixed epoch budget, and
// prints the resulting time-to-accuracy trade-off (the reason the paper
// says practitioners must choose T explicitly).
//
//	go run ./examples/cifar10
package main

import (
	"fmt"

	"sasgd/internal/core"
	"sasgd/internal/experiments"
	"sasgd/internal/metrics"
)

func main() {
	w := experiments.ImageWorkload()
	const p = 8
	const epochs = 12

	fmt.Printf("SASGD on %s with p=%d learners, %d epochs per run\n\n", w.Name, p, epochs)
	const target = 0.80
	tab := metrics.Table{Header: []string{"T", "test acc", "samples to 80%", "sim epoch(s)", "sim time-to-budget(s)"}}
	for _, T := range []int{1, 5, 25, 50} {
		// Accuracy run (real training, reduced scale).
		acc := core.Train(core.Config{
			Algo: core.AlgoSASGD, Learners: p, Interval: T,
			Gamma: w.Gamma, Batch: w.Batch, Epochs: epochs, Seed: 1, EvalEvery: 1,
		}, w.Problem)

		// Timing run (simulated fabric at paper scale).
		sim := w.SimConfig(p)
		timing := core.Train(core.Config{
			Algo: core.AlgoSASGD, Learners: p, Interval: T,
			Gamma: w.Gamma, Batch: 64, Epochs: 2, Seed: 1, EvalEvery: 2,
			Sim: sim, FlopsPerSample: w.PaperCost.TrainFlopsPerSample,
		}, w.Problem)

		epochSecs := timing.EpochTime()
		complexity := "-"
		if s, ok := metrics.SamplesToTarget(acc.Curve, target, w.Problem.Train.Len()); ok {
			complexity = fmt.Sprint(s)
		}
		tab.AddRow(fmt.Sprint(T), metrics.Pct(acc.FinalTest), complexity, metrics.Secs(epochSecs), metrics.Secs(epochSecs*epochs))
	}
	fmt.Print(tab.String())
	fmt.Println("\nSmall T: more communication per epoch but fewer samples to a")
	fmt.Println("target accuracy. Large T: cheap epochs, higher sample complexity.")
	fmt.Println("The wall-clock optimum is in between — exactly Theorem 4's message.")
}
