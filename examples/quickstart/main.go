// Quickstart: build a network, generate a synthetic workload, and train
// it with SASGD (Algorithm 1 of the paper) on four learners.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"sasgd/internal/core"
	"sasgd/internal/data"
	"sasgd/internal/metrics"
	"sasgd/internal/model"
	"sasgd/internal/nn"
)

func main() {
	// 1. A workload: a reduced-scale version of the paper's CIFAR-10
	//    image-classification task (class-conditional synthetic images).
	train, test := data.GenImages(data.SmallImageConfig())

	// 2. A model factory: every learner builds its own replica of the
	//    Table-I convolutional network; SASGD broadcasts learner 0's
	//    initial parameters to the rest.
	prob := &core.Problem{
		Name: "quickstart",
		Model: func(seed int64) *nn.Network {
			return model.NewCIFARNet(rand.New(rand.NewSource(seed)), model.SmallCIFARConfig())
		},
		Train: train,
		Test:  test,
	}

	// 3. Train with SASGD: p = 4 learners, aggregation interval T = 10,
	//    local rate γ = 0.1 and the default global rate γp = γ/p (which
	//    makes each aggregation exactly model averaging).
	res := core.Train(core.Config{
		Algo:     core.AlgoSASGD,
		Learners: 4,
		Interval: 10,
		Gamma:    0.1,
		Batch:    16,
		Epochs:   10,
		Seed:     1,
	}, prob)

	for _, pt := range res.Curve {
		fmt.Printf("epoch %2d: train %s  test %s\n", pt.Epoch, metrics.Pct(pt.Train), metrics.Pct(pt.Test))
	}
	fmt.Printf("\nSASGD processed %d samples across %d learners; staleness is bounded by T=%d by construction (measured max: %d)\n",
		res.Samples, res.P, res.T, res.StalenessMax)
}
